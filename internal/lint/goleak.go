package lint

import (
	"go/ast"
	"go/types"

	"leveldbpp/internal/lint/lockfacts"
)

// GoLeak checks that every goroutine the program spawns can terminate.
// For each go statement it collects the bodies reachable through the
// lockfacts call graph (the spawned literal or named function plus
// everything it calls) and reports the spawn site when those bodies
// contain an unbounded loop — a `for {}` with no return, no break out of
// the loop, and no goto — and no termination signal anywhere:
//
//   - a channel receive (<-ch, for range ch, or a select arm), the
//     done-channel / context.Done pattern;
//   - a sync.WaitGroup.Done call, marking the goroutine as joined.
//
// Bounded loops (a for with a condition, range over a collection) and
// loops that exit via return/break are fine without a signal: the
// goroutine runs off the end of its body. Calls through function values
// and interfaces outside the program are invisible to the call graph, so
// a spawned method value is not checked. Suppress one spawn site with
// //lsm:leakok.
var GoLeak = &Analyzer{
	Name:        "goleak",
	Doc:         "every go statement reaches a termination signal: done-channel select, channel receive, WaitGroup.Done, or a bounded loop",
	Suppression: "lsm:leakok",
	RunProgram:  runGoLeak,
}

func runGoLeak(pass *ProgramPass) {
	for _, pkg := range pass.Pkgs {
		fpkg := pass.FactsPkg(pkg)
		if fpkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, fpkg, g)
				return true
			})
		}
	}
}

func checkGoStmt(pass *ProgramPass, pkg *lockfacts.Pkg, g *ast.GoStmt) {
	if pass.SuppressedAt(g.Pos(), "lsm:leakok") {
		return
	}
	var roots []string
	name := "goroutine"
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		fn := pass.Prog.LitFuncs[lit]
		if fn == nil {
			return
		}
		roots = []string{fn.ID}
		name = fn.Display
	} else {
		roots = pass.Prog.Callees(pkg, g.Call)
		if len(roots) == 0 {
			return // method value / function value: outside the call graph
		}
	}

	var bodies []*lockfacts.Func
	seen := map[string]bool{}
	for _, root := range roots {
		if fn := pass.Prog.Funcs[root]; fn != nil && name == "goroutine" {
			name = fn.Display
		}
		for _, fn := range pass.Prog.Reachable(root) {
			if !seen[fn.ID] {
				seen[fn.ID] = true
				bodies = append(bodies, fn)
			}
		}
	}
	if len(bodies) == 0 {
		return
	}

	unbounded := false
	signal := false
	for _, fn := range bodies {
		b := goLeakScan(fn)
		unbounded = unbounded || b.unbounded
		signal = signal || b.signal
	}
	if unbounded && !signal {
		pass.Reportf(g.Pos(),
			"goroutine %s may never exit: unbounded loop with no termination signal (done-channel select, channel receive, or WaitGroup.Done)",
			name)
	}
}

type goLeakFacts struct {
	unbounded bool // a for{} with no return/break/goto escape
	signal    bool // receive, select, range-over-channel, or WaitGroup.Done
}

// goLeakScan inspects one function body, skipping nested go statements
// (they are separate spawn sites with their own report).
func goLeakScan(fn *lockfacts.Func) goLeakFacts {
	var out goLeakFacts
	info := fn.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				out.signal = true
			}
		case *ast.SelectStmt:
			out.signal = true
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					out.signal = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(info, x) {
				out.signal = true
			}
		case *ast.ForStmt:
			if x.Cond == nil && !loopEscapes(x) {
				out.unbounded = true
			}
		}
		return true
	})
	return out
}

func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := objOf(info, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// loopEscapes reports whether a `for {}` can exit on its own: a return
// anywhere in its body (outside nested function literals), an unlabeled
// break at the loop's own level, or any labeled break/goto (assumed to
// leave the loop — the check errs toward silence).
func loopEscapes(loop *ast.ForStmt) bool {
	escapes := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || escapes {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return
		case *ast.ReturnStmt:
			escapes = true
			return
		case *ast.BranchStmt:
			switch x.Tok.String() {
			case "break":
				if depth == 0 || x.Label != nil {
					escapes = true
				}
			case "goto":
				escapes = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			if n != ast.Node(loop) {
				depth++
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || c == nil {
				return true
			}
			walk(c, depth)
			return false
		})
	}
	walk(loop.Body, 0)
	return escapes
}
