package lint

import (
	"fmt"
	"go/token"

	"leveldbpp/internal/lint/lockfacts"
)

// ProgramPass carries the whole loaded program through one
// whole-program analyzer: every type-checked package, the lockfacts
// call graph / lock-fact index built over them, and the merged //lsm:
// line-directive table (filenames are unique across packages, so the
// per-package maps merge without collisions).
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Prog     *lockfacts.Program

	diags          *[]Diagnostic
	lineDirectives map[string]map[int][]string
}

// newProgramPass builds the shared (analyzer-independent) parts of a
// ProgramPass once; RunAnalyzers stamps each analyzer onto a copy.
func newProgramPass(pkgs []*Package, diags *[]Diagnostic) *ProgramPass {
	pp := &ProgramPass{
		Pkgs:           pkgs,
		diags:          diags,
		lineDirectives: map[string]map[int][]string{},
	}
	var facts []*lockfacts.Pkg
	for _, pkg := range pkgs {
		pp.Fset = pkg.Fset
		facts = append(facts, &lockfacts.Pkg{
			Path:  pkg.ImportPath,
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Types: pkg.Types,
			Info:  pkg.Info,
		})
		for file, lines := range buildLineDirectives(pkg.Fset, pkg.Files) {
			pp.lineDirectives[file] = lines
		}
	}
	pp.Prog = lockfacts.Build(facts)
	return pp
}

// FactsPkg returns the lockfacts view of a loaded package.
func (p *ProgramPass) FactsPkg(pkg *Package) *lockfacts.Pkg {
	for _, fp := range p.Prog.Pkgs {
		if fp.Path == pkg.ImportPath {
			return fp
		}
	}
	return nil
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer:    p.Analyzer.Name,
		Pos:         p.Fset.Position(pos),
		Message:     fmt.Sprintf(format, args...),
		Suppression: p.Analyzer.Suppression,
	})
}

// SuppressedAt reports whether a comment on pos's line (in any loaded
// package) carries the given directive.
func (p *ProgramPass) SuppressedAt(pos token.Pos, directive string) bool {
	position := p.Fset.Position(pos)
	return hasDirective(p.lineDirectives[position.Filename], position.Line, directive)
}
