package lockfacts

import (
	"go/ast"
	"go/token"
)

// collectFacts fills fn.Calls and fn.Acquires by a flat walk of the
// body. Function literals are skipped — a literal's locks and calls are
// not the enclosing function's facts (go-spawned literals get their own
// Func nodes; other literals are a documented blind spot). go statements
// are skipped entirely: the spawned work does not run under the caller's
// locks, so a GoStmt is not a call-graph edge.
func collectFacts(p *Program, idx *resolveIndex, fn *Func) {
	pkg := fn.Pkg
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && isMutexRecv(pkg, sel) {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if class := lockClass(pkg, sel.X); class != "" {
						fn.Acquires = append(fn.Acquires, Acquire{
							Class: class,
							Pos:   x.Pos(),
							Read:  sel.Sel.Name == "RLock",
						})
					}
					return true
				case "Unlock", "RUnlock", "TryLock", "TryRLock":
					return true
				}
			}
			if ids := idx.callees(pkg, x); len(ids) > 0 {
				fn.Calls = append(fn.Calls, Call{Pos: x.Pos(), Callees: ids})
			}
			return true
		}
		return true
	})
}

// isMutexRecv reports whether sel's receiver expression has mutex type,
// i.e. the selector is a sync.Mutex/RWMutex method call.
func isMutexRecv(pkg *Pkg, sel *ast.SelectorExpr) bool {
	tv, ok := pkg.Info.Types[sel.X]
	return ok && tv.Type != nil && isMutexType(tv.Type)
}

// edgeScanner walks one function body in source order tracking the
// multiset of class locks held, emitting an Edge for every acquisition
// (direct or through a call) performed under a held lock.
//
// The walk is a linear approximation, not a dataflow lattice. Two rules
// keep it honest on the engine's real control flow:
//
//   - a branch body that ends in a terminator (return, panic, break,
//     continue, goto) restores the held set to its entry snapshot, so
//     early-exit unlock paths ("if closed { mu.Unlock(); return }") do
//     not leak into the fallthrough path;
//   - a branch body that falls through keeps its effects, so conditional
//     acquisitions with deferred unlocks ("if bg != nil {
//     compactionMu.Lock(); defer Unlock }") stay held afterwards.
//
// switch cases and select arms are alternatives, so each is scanned from
// the same entry snapshot and restored. Deferred Unlock is ignored (the
// lock is held to function end); deferred ordinary calls are processed
// under the held set at the defer site.
type edgeScanner struct {
	p        *Program
	fn       *Func
	pkg      *Pkg
	calleeAt map[token.Pos][]string
	held     []heldLock
	edges    []Edge
}

type heldLock struct {
	class string
	pos   token.Pos
}

func (p *Program) scanEdges(fn *Func) []Edge {
	s := &edgeScanner{p: p, fn: fn, pkg: fn.Pkg, calleeAt: map[token.Pos][]string{}}
	for _, c := range fn.Calls {
		s.calleeAt[c.Pos] = c.Callees
	}
	s.block(fn.Body)
	return s.edges
}

func (s *edgeScanner) snapshot() []heldLock { return append([]heldLock(nil), s.held...) }

func (s *edgeScanner) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		s.stmt(st)
	}
}

// branch scans a conditionally executed block, undoing its lock effects
// when the block cannot fall through.
func (s *edgeScanner) branch(b *ast.BlockStmt) {
	entry := s.snapshot()
	s.block(b)
	if terminates(b) {
		s.held = entry
	}
}

// alternative scans one switch case / select arm from the entry state
// and always restores: alternatives do not sequence.
func (s *edgeScanner) alternative(stmts []ast.Stmt, comm ast.Stmt) {
	entry := s.snapshot()
	if comm != nil {
		s.stmt(comm)
	}
	for _, st := range stmts {
		s.stmt(st)
	}
	s.held = entry
}

func (s *edgeScanner) stmt(st ast.Stmt) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		s.block(x)
	case *ast.IfStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.expr(x.Cond)
		s.branch(x.Body)
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			s.branch(e)
		case *ast.IfStmt:
			s.stmt(e)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.expr(x.Cond)
		s.branch(x.Body)
		if x.Post != nil {
			s.stmt(x.Post)
		}
	case *ast.RangeStmt:
		s.expr(x.X)
		s.branch(x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.expr(x.Tag)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.alternative(cc.Body, nil)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.alternative(cc.Body, nil)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.alternative(cc.Body, cc.Comm)
			}
		}
	case *ast.LabeledStmt:
		s.stmt(x.Stmt)
	case *ast.DeferStmt:
		s.call(x.Call, true)
	case *ast.GoStmt:
		// Spawned work runs under its own (empty) held set.
	case *ast.ExprStmt:
		s.expr(x.X)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			s.expr(r)
		}
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			s.expr(r)
		}
		for _, l := range x.Lhs {
			s.expr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.expr(x.Chan)
		s.expr(x.Value)
	case *ast.IncDecStmt:
		s.expr(x.X)
	}
}

// expr visits every call in an expression in pre-order, skipping
// function literals.
func (s *edgeScanner) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			s.call(call, false)
		}
		return true
	})
}

func (s *edgeScanner) call(call *ast.CallExpr, deferred bool) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isMutexRecv(s.pkg, sel) {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if class := lockClass(s.pkg, sel.X); class != "" {
				s.acquire(class, call.Pos())
			}
			return
		case "Unlock", "RUnlock":
			if !deferred {
				s.release(lockClass(s.pkg, sel.X))
			}
			return
		case "TryLock", "TryRLock":
			return
		}
	}
	if len(s.held) == 0 {
		return
	}
	for _, id := range s.calleeAt[call.Pos()] {
		ta := s.p.TransAcquires(id)
		for _, class := range sortedKeys(ta) {
			w := ta[class]
			s.emit(class, call.Pos(), w.Chain, w.Pos)
		}
	}
}

func (s *edgeScanner) acquire(class string, pos token.Pos) {
	s.emit(class, pos, nil, pos)
	s.held = append(s.held, heldLock{class: class, pos: pos})
}

func (s *edgeScanner) release(class string) {
	if class == "" {
		return
	}
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].class == class {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// emit records From→class edges for every distinct held class. Self-edges
// are dropped: classes are instance-blind (see package doc).
func (s *edgeScanner) emit(class string, pos token.Pos, chain []string, acqPos token.Pos) {
	seen := map[string]bool{}
	for _, h := range s.held {
		if h.class == class || seen[h.class] {
			continue
		}
		seen[h.class] = true
		s.edges = append(s.edges, Edge{
			From:    h.class,
			To:      class,
			Pos:     pos,
			Holder:  s.fn.Display,
			HoldPos: h.pos,
			Chain:   chain,
			AcqPos:  acqPos,
		})
	}
}

// terminates reports whether a block's last statement makes the
// fallthrough edge unreachable.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	}
	return false
}
