// Package lockfacts is the whole-program substrate beneath lsmlint's
// concurrency analyzers (DESIGN.md §5.8). From the packages the lint
// loader type-checked it builds:
//
//   - a whole-program call graph over declared functions and go-spawned
//     function literals, with static calls resolved by object identity
//     and interface-method calls resolved to every concrete
//     implementation declared in the program;
//   - lock classes: every mutex that lives in a named struct field or a
//     package-level variable gets a stable name like "lsm.DB.mu"
//     (package-path tail, owning type, field), so acquisitions of the
//     same field across different call paths — and different instances —
//     fold into one node of the lock-order graph;
//   - per-function lock facts: the acquisitions a function performs
//     directly (seeded by Lock/RLock syntax) and, transitively, through
//     everything it calls, each with a deterministic witness chain
//     naming the intermediate functions;
//   - acquisition edges: lock A held at a point where lock B is
//     acquired (directly or through a call), the raw material for the
//     lockorder analyzer's cycle and blessed-partial-order checks.
//
// The engine is deliberately approximate in documented ways (see the
// soundness caveats in DESIGN.md §5.8): classes are instance-blind, so
// self-edges (A held while acquiring another instance of A) are dropped;
// calls through function values and stdlib interfaces are invisible;
// held-set tracking inside a body is a linear scan with branch handling,
// not a dataflow lattice. Every approximation errs toward missing an
// edge, never toward inventing one, except for instance-blindness —
// which is why the blessed order is a repo-wide contract, not a proof.
//
// The package is analyzer-agnostic so future checks (e.g. a
// crash-consistency pass over WAL ordering) can reuse the same graph.
package lockfacts

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pkg is one type-checked package handed to Build. It mirrors the lint
// loader's Package without importing it (the lint package imports this
// one).
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Tail returns the import-path tail used in display names.
func (p *Pkg) Tail() string {
	if i := strings.LastIndex(p.Path, "/"); i >= 0 {
		return p.Path[i+1:]
	}
	return p.Path
}

// Func is one node of the whole-program call graph: a declared function
// or method, or a function literal spawned by a go statement (a
// goroutine root).
type Func struct {
	ID      string // canonical, unique: "<import path>.(<recv>).<name>"
	Display string // short, for witness chains: "<pkg tail>.<recv>.<name>"
	Pkg     *Pkg
	Decl    *ast.FuncDecl // nil for go-spawned literals
	Lit     *ast.FuncLit  // nil for declared functions
	Body    *ast.BlockStmt
	GoRoot  bool // literal spawned by a go statement

	// Calls are the statically resolvable call sites in Body, in source
	// order. Interface-method calls carry one callee per implementation.
	Calls []Call
	// Acquires are the direct Lock/RLock sites on class locks in Body,
	// in source order.
	Acquires []Acquire
}

// Call is one call site with its resolved callee set.
type Call struct {
	Pos     token.Pos
	Callees []string // sorted callee IDs present in the program
}

// Acquire is one direct lock acquisition of a class lock.
type Acquire struct {
	Class string
	Pos   token.Pos
	Read  bool // RLock rather than Lock
}

// Witness is a deterministic path to a transitive acquisition: Chain is
// the display names from the first callee down to the function containing
// the Lock call at Pos.
type Witness struct {
	Chain []string
	Pos   token.Pos
}

// Edge records lock From held at the point where lock To is acquired —
// directly (Chain nil, Pos is the Lock call) or through a call (Pos is
// the call site, Chain walks to the acquiring function, AcqPos is the
// Lock call inside it).
type Edge struct {
	From, To string
	Pos      token.Pos
	Holder   string   // display name of the function holding From
	HoldPos  token.Pos
	Chain    []string // nil for a direct acquisition in Holder
	AcqPos   token.Pos
}

// Path renders the witness call path of the edge, starting at Holder.
func (e Edge) Path() string {
	parts := append([]string{e.Holder}, e.Chain...)
	return strings.Join(parts, " -> ")
}

// GuardedField describes one `// guarded by <mu>` field annotation,
// keyed canonically so cross-package accesses resolve to the same entry.
type GuardedField struct {
	Key   string // "<pkg tail>.<Type>.<field>"
	Guard string // bare mutex name from the annotation
}

// Program is the built whole-program index.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Pkg
	Funcs map[string]*Func
	// FuncIDs is Funcs' key set in sorted order; every deterministic
	// traversal iterates it rather than the map.
	FuncIDs []string
	// Guards maps canonical field keys to their annotated guard mutex.
	Guards map[string]string
	// LitFuncs maps each go-spawned function literal to its Func node.
	LitFuncs map[*ast.FuncLit]*Func

	idx      *resolveIndex
	taCache  map[string]map[string]Witness
	edges    []Edge
	hasEdges bool
}

// Callees resolves a call expression in pkg to the canonical IDs of the
// program functions it may invoke (see resolveIndex.callees).
func (p *Program) Callees(pkg *Pkg, call *ast.CallExpr) []string {
	return p.idx.callees(pkg, call)
}

// Build indexes pkgs into a Program. Determinism: packages are processed
// in the given order, functions within a package in file/position order,
// and all derived tables are keyed and iterated in sorted order.
func Build(pkgs []*Pkg) *Program {
	p := &Program{
		Funcs:    map[string]*Func{},
		Guards:   map[string]string{},
		LitFuncs: map[*ast.FuncLit]*Func{},
		taCache:  map[string]map[string]Witness{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.Pkgs = pkgs

	idx := newResolveIndex(pkgs)
	for _, pkg := range pkgs {
		p.collectGuards(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := &Func{
					ID:      declID(pkg, fd),
					Display: declDisplay(pkg, fd),
					Pkg:     pkg,
					Decl:    fd,
					Body:    fd.Body,
				}
				p.Funcs[fn.ID] = fn
			}
		}
		// Go-spawned function literals are goroutine roots: they run with
		// an empty held set and their bodies carry their own lock facts.
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok || lit.Body == nil {
					return true
				}
				pos := pkg.Fset.Position(lit.Pos())
				fn := &Func{
					ID:      pkg.Path + ".$go:" + pos.Filename + ":" + itoa(pos.Line) + ":" + itoa(pos.Column),
					Display: pkg.Tail() + ".go@" + itoa(pos.Line),
					Pkg:     pkg,
					Lit:     lit,
					Body:    lit.Body,
					GoRoot:  true,
				}
				p.Funcs[fn.ID] = fn
				p.LitFuncs[lit] = fn
				return true
			})
		}
	}
	p.idx = idx
	for id := range p.Funcs {
		p.FuncIDs = append(p.FuncIDs, id)
	}
	sort.Strings(p.FuncIDs)

	for _, id := range p.FuncIDs {
		fn := p.Funcs[id]
		collectFacts(p, idx, fn)
	}
	return p
}

// FuncAt returns the Func whose body is decl, or nil.
func (p *Program) FuncAt(pkg *Pkg, fd *ast.FuncDecl) *Func {
	return p.Funcs[declID(pkg, fd)]
}

// Reachable returns the functions reachable from rootID through the call
// graph, root included, in deterministic (sorted traversal) order.
func (p *Program) Reachable(rootID string) []*Func {
	root := p.Funcs[rootID]
	if root == nil {
		return nil
	}
	seen := map[string]bool{rootID: true}
	out := []*Func{root}
	queue := []*Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, call := range fn.Calls {
			for _, callee := range call.Callees {
				if seen[callee] {
					continue
				}
				seen[callee] = true
				if next := p.Funcs[callee]; next != nil {
					out = append(out, next)
					queue = append(queue, next)
				}
			}
		}
	}
	return out
}

// TransAcquires returns every lock class the function acquires directly
// or through its (transitive) callees, each with a deterministic witness
// chain. Cycles in the call graph are cut at the back edge; the memoized
// first witness wins, and because computation always proceeds in sorted
// FuncID order the result is stable across runs.
func (p *Program) TransAcquires(id string) map[string]Witness {
	return p.transAcquires(id, map[string]bool{})
}

func (p *Program) transAcquires(id string, inProgress map[string]bool) map[string]Witness {
	if cached, ok := p.taCache[id]; ok {
		return cached
	}
	fn := p.Funcs[id]
	if fn == nil {
		return nil
	}
	inProgress[id] = true
	out := map[string]Witness{}
	for _, acq := range fn.Acquires {
		if _, ok := out[acq.Class]; !ok {
			out[acq.Class] = Witness{Chain: []string{fn.Display}, Pos: acq.Pos}
		}
	}
	for _, call := range fn.Calls {
		for _, callee := range call.Callees {
			if inProgress[callee] {
				continue
			}
			for _, class := range sortedKeys(p.transAcquires(callee, inProgress)) {
				if _, ok := out[class]; ok {
					continue
				}
				sub := p.taCache[callee][class]
				chain := make([]string, 0, len(sub.Chain)+1)
				chain = append(chain, fn.Display)
				chain = append(chain, sub.Chain...)
				out[class] = Witness{Chain: chain, Pos: sub.Pos}
			}
		}
	}
	delete(inProgress, id)
	p.taCache[id] = out
	return out
}

// Edges computes (and caches) every acquisition edge in the program.
// Self-edges (same class held and acquired) are dropped: classes are
// instance-blind, and the engine's unlock-then-relock patterns would
// otherwise report every re-acquisition of the lock a caller holds.
func (p *Program) Edges() []Edge {
	if p.hasEdges {
		return p.edges
	}
	p.hasEdges = true
	for _, id := range p.FuncIDs {
		p.edges = append(p.edges, p.scanEdges(p.Funcs[id])...)
	}
	return p.edges
}

// collectGuards records `// guarded by <mu>` annotations under canonical
// field keys for cross-package consumers (the atomicmix analyzer).
func (p *Program) collectGuards(pkg *Pkg) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner := pkg.Tail() + "." + ts.Name.Name
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					p.Guards[owner+"."+name.Name] = guard
				}
			}
			return true
		})
	}
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			guard := m[1]
			if i := strings.LastIndex(guard, "."); i >= 0 {
				guard = guard[i+1:]
			}
			return guard
		}
	}
	return ""
}

func sortedKeys(m map[string]Witness) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
