package lockfacts_test

import (
	"fmt"
	"reflect"
	"testing"

	"leveldbpp/internal/lint"
	"leveldbpp/internal/lint/lockfacts"
)

// The fixtures live under the lint package's testdata tree, which ./...
// patterns skip; they are loaded here by explicit path. caller imports
// impl, so the pair exercises every cross-package seam: call edges,
// interface resolution, and lock classes owned by another package.
const (
	implPath   = "leveldbpp/internal/lint/testdata/src/xcall/impl"
	callerPath = "leveldbpp/internal/lint/testdata/src/xcall/caller"
)

// buildProgram loads patterns (relative to the lint package directory)
// and builds a lockfacts program over them, the same conversion the
// analyzer driver performs.
func buildProgram(t *testing.T, patterns ...string) *lockfacts.Program {
	t.Helper()
	pkgs, err := lint.Load("..", patterns...)
	if err != nil {
		t.Fatalf("load %v: %v", patterns, err)
	}
	var facts []*lockfacts.Pkg
	for _, pkg := range pkgs {
		facts = append(facts, &lockfacts.Pkg{
			Path:  pkg.ImportPath,
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Types: pkg.Types,
			Info:  pkg.Info,
		})
	}
	return lockfacts.Build(facts)
}

func xcallProgram(t *testing.T) *lockfacts.Program {
	return buildProgram(t, "./testdata/src/xcall/impl", "./testdata/src/xcall/caller")
}

// TestCrossPackageCallEdge: a static method call into another loaded
// package resolves to exactly that method's canonical ID.
func TestCrossPackageCallEdge(t *testing.T) {
	prog := xcallProgram(t)
	fn := prog.Funcs[callerPath+".(Pool).Write"]
	if fn == nil {
		t.Fatalf("caller.(Pool).Write not in program; have %v", prog.FuncIDs)
	}
	want := implPath + ".(Store).Put"
	var got [][]string
	for _, call := range fn.Calls {
		got = append(got, call.Callees)
	}
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != want {
		t.Errorf("Write call edges = %v, want [[%s]]", got, want)
	}
}

// TestInterfaceResolution: a call through an interface declared in a
// program package resolves to every concrete implementation, across
// package boundaries, in sorted order.
func TestInterfaceResolution(t *testing.T) {
	prog := xcallProgram(t)
	fn := prog.Funcs[callerPath+".(Pool).Flush"]
	if fn == nil {
		t.Fatal("caller.(Pool).Flush not in program")
	}
	want := []string{implPath + ".(Null).Drain", implPath + ".(Store).Drain"}
	var got [][]string
	for _, call := range fn.Calls {
		got = append(got, call.Callees)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
		t.Errorf("Flush call edges = %v, want [%v]", got, want)
	}
}

// TestTransAcquiresWitness: the transitive acquisition set of a holder
// names the callee's lock class with a chain walking through the
// intermediate function displays.
func TestTransAcquiresWitness(t *testing.T) {
	prog := xcallProgram(t)
	acq := prog.TransAcquires(callerPath + ".(Pool).Write")
	w, ok := acq["impl.Store.mu"]
	if !ok {
		t.Fatalf("impl.Store.mu not in TransAcquires; have %v", acq)
	}
	wantChain := []string{"caller.Pool.Write", "impl.Store.Put"}
	if !reflect.DeepEqual(w.Chain, wantChain) {
		t.Errorf("witness chain = %v, want %v", w.Chain, wantChain)
	}
	if _, ok := acq["caller.Pool.mu"]; !ok {
		t.Errorf("direct acquisition caller.Pool.mu missing; have %v", acq)
	}
}

// TestCrossPackageEdges: holding caller.Pool.mu across both the static
// and the interface call yields acquisition edges into impl.Store.mu
// with full witness paths.
func TestCrossPackageEdges(t *testing.T) {
	prog := xcallProgram(t)
	paths := map[string]bool{}
	for _, e := range prog.Edges() {
		if e.From == "caller.Pool.mu" && e.To == "impl.Store.mu" {
			paths[e.Path()] = true
		}
	}
	for _, want := range []string{
		"caller.Pool.Write -> impl.Store.Put",
		"caller.Pool.Flush -> impl.Store.Drain",
	} {
		if !paths[want] {
			t.Errorf("missing edge witness %q; have %v", want, paths)
		}
	}
}

// TestWitnessDeterminism: two independent loads of the cyclic lockorder
// fixture render identical edge lists — same order, same witness
// chains, same positions. The lockorder analyzer's cycle reports are
// built from these, so any instability here would make `make lint`
// flap.
func TestWitnessDeterminism(t *testing.T) {
	render := func(prog *lockfacts.Program) []string {
		var out []string
		for _, e := range prog.Edges() {
			out = append(out, fmt.Sprintf("%s -> %s via %s at %s acq %s",
				e.From, e.To, e.Path(),
				prog.Fset.Position(e.Pos), prog.Fset.Position(e.AcqPos)))
		}
		return out
	}
	a := render(buildProgram(t, "./testdata/src/lockorder"))
	b := render(buildProgram(t, "./testdata/src/lockorder"))
	if len(a) == 0 {
		t.Fatal("lockorder fixture produced no edges")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("edge rendering not deterministic:\n run 1: %v\n run 2: %v", a, b)
	}
}
