package lockfacts

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Cross-package identity is the central problem this file solves: the
// loader type-checks each target package from source while its
// dependencies come from gc export data, so the *types.Object for the
// same function differs between the two views. All graph keys are
// therefore canonical strings derived from package path, receiver type
// name, and member name — equal across type-checker universes.

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// funcKey canonicalizes a function or method object.
func funcKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOfType(recv.Type()); named != nil {
			return pkg.Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return ""
	}
	return pkg.Path() + "." + fn.Name()
}

func declID(pkg *Pkg, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if name := recvTypeName(fd.Recv.List[0].Type); name != "" {
			return pkg.Path + ".(" + name + ")." + fd.Name.Name
		}
	}
	return pkg.Path + "." + fd.Name.Name
}

func declDisplay(pkg *Pkg, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if name := recvTypeName(fd.Recv.List[0].Type); name != "" {
			return pkg.Tail() + "." + name + "." + fd.Name.Name
		}
	}
	return pkg.Tail() + "." + fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

func namedOfType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// resolveIndex answers "which program functions can this call reach".
type resolveIndex struct {
	// declared maps canonical function keys to the IDs Build assigns —
	// they are the same strings today, but the indirection keeps the
	// invariant in one place.
	declared map[string]bool
	// methodsBySig maps "name\x00signature" to the sorted canonical IDs
	// of every declared concrete method with that shape.
	methodsBySig map[string][]string
	// methodSets maps "<path>.<Type>" to its method name→signature set,
	// for full interface-satisfaction checks.
	methodSets map[string]map[string]string
	// programPkgs is the set of import paths type-checked from source;
	// interface calls are resolved only for interfaces declared in them,
	// so stdlib shapes like io.Closer cannot fabricate edges between
	// unrelated Close methods.
	programPkgs map[string]bool
}

func newResolveIndex(pkgs []*Pkg) *resolveIndex {
	idx := &resolveIndex{
		declared:     map[string]bool{},
		methodsBySig: map[string][]string{},
		methodSets:   map[string]map[string]string{},
		programPkgs:  map[string]bool{},
	}
	for _, pkg := range pkgs {
		idx.programPkgs[pkg.Path] = true
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := declID(pkg, fd)
				idx.declared[id] = true
				if fd.Recv == nil || len(fd.Recv.List) == 0 {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				recvName := recvTypeName(fd.Recv.List[0].Type)
				if recvName == "" {
					continue
				}
				sig := sigString(obj)
				idx.methodsBySig[fd.Name.Name+"\x00"+sig] = append(idx.methodsBySig[fd.Name.Name+"\x00"+sig], id)
				typeKey := pkg.Path + "." + recvName
				if idx.methodSets[typeKey] == nil {
					idx.methodSets[typeKey] = map[string]string{}
				}
				idx.methodSets[typeKey][fd.Name.Name] = sig
			}
		}
	}
	for k := range idx.methodsBySig {
		sort.Strings(idx.methodsBySig[k])
	}
	return idx
}

// sigString renders a function signature (receiver excluded) with
// full-package-path qualification, so signatures computed in different
// type-checker universes compare equal.
func sigString(fn *types.Func) string {
	return types.TypeString(fn.Type(), func(p *types.Package) string { return p.Path() })
}

// callees resolves one call expression to the canonical IDs of program
// functions it may invoke. Static calls resolve to at most one; calls
// through an interface declared in a program package resolve to every
// declared concrete type that satisfies the full interface and has a
// method matching the callee's name and signature. Calls through
// function values, stdlib interfaces, and builtins resolve to none.
func (idx *resolveIndex) callees(pkg *Pkg, call *ast.CallExpr) []string {
	var fnObj *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fnObj, _ = pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fnObj, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		if fnObj != nil {
			if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					return idx.interfaceCallees(fnObj, iface)
				}
			}
		}
	default:
		return nil
	}
	if fnObj == nil {
		return nil
	}
	if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			// Method expression or qualified interface method: same rule.
			return idx.interfaceCallees(fnObj, sig.Recv().Type().Underlying().(*types.Interface))
		}
	}
	key := funcKey(fnObj)
	if key != "" && idx.declared[key] {
		return []string{key}
	}
	return nil
}

func (idx *resolveIndex) interfaceCallees(fn *types.Func, iface *types.Interface) []string {
	// Only interfaces declared inside the program are resolved; a
	// single-method stdlib interface (io.Closer) would otherwise connect
	// every Close method in the repo.
	if fn.Pkg() == nil || !idx.programPkgs[fn.Pkg().Path()] {
		return nil
	}
	want := fn.Name() + "\x00" + sigString(fn)
	candidates := idx.methodsBySig[want]
	if len(candidates) == 0 {
		return nil
	}
	// The full interface must be satisfied by name+signature, not just
	// the called method.
	need := map[string]string{}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		need[m.Name()] = types.TypeString(m.Type(), func(p *types.Package) string { return p.Path() })
	}
	var out []string
	for _, id := range candidates {
		typeKey := id[:strings.Index(id, ".(")] + "." + id[strings.Index(id, ".(")+2:strings.Index(id, ").")]
		set := idx.methodSets[typeKey]
		ok := true
		for name, sig := range need {
			if set[name] != sig {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// lockClass names the mutex behind expr (the receiver of a Lock call):
// "<pkg tail>.<Type>.<field>" for struct fields, "<pkg tail>.<name>" for
// package-level variables, "" for locals and anything unresolvable.
func lockClass(pkg *Pkg, expr ast.Expr) string {
	switch x := unparen(expr).(type) {
	case *ast.SelectorExpr:
		obj, ok := pkg.Info.Uses[x.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return ""
		}
		if sel, ok := pkg.Info.Selections[x]; ok {
			if named := namedOfType(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return pathTail(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + obj.Name()
			}
		}
		return ""
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return ""
		}
		// Package-level variable?
		if obj.Parent() == obj.Pkg().Scope() {
			return pathTail(obj.Pkg().Path()) + "." + obj.Name()
		}
		return ""
	}
	return ""
}

func pathTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named := namedOfType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
