package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *listedError
}

type listedError struct {
	Err string
}

// Load resolves patterns (e.g. "./...") relative to dir with the go tool,
// then parses and type-checks every matched package from source. Imports
// — standard library and module packages alike — are satisfied from
// compiler export data reported by `go list -export`, so no dependency is
// re-checked from source and go.mod stays free of analysis dependencies.
//
// Test files are not loaded: the invariants lsmlint enforces are contracts
// of the engine's production paths, and _test.go files routinely violate
// them on purpose (ignored Close errors in t.Cleanup, raw byte compares
// against fixtures).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listedPkg
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to `go list -deps -export -json` and decodes the
// package stream. The go tool is the only authority on module layout and
// build caching; using it keeps the loader correct under vendoring, build
// tags and toolchain changes for free.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPkg
	for {
		lp := &listedPkg{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkPackage parses lp's files and type-checks them against export data.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
