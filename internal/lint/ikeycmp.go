package lint

import (
	"go/ast"
	"strings"
)

// IKeyCmp forbids raw byte comparison of internal keys outside
// internal/ikey. Internal keys order by user key ascending then sequence
// number descending; bytes.Compare/bytes.Equal ignore the trailer
// encoding and produce a different order, which silently breaks merge
// iteration, tombstone shadowing and manifest range checks. Comparing
// *user* keys (the result of ikey.UserKey) with bytes is fine and
// common; the analyzer therefore only fires when an argument is
// recognisably an internal key:
//
//   - a call to ikey.Make / ikey.SeekKey / ikey.AppendSeek
//   - an iterator Key() call (iterators yield internal keys)
//   - a name following the repo's internal-key conventions: ik, ika,
//     ikb, an "ik"-prefixed or "internalKey"-prefixed identifier, or the
//     manifest bound fields Smallest/Largest
var IKeyCmp = &Analyzer{
	Name:        "ikeycmp",
	Doc:         "internal keys are compared with ikey.Compare, never bytes.Compare/bytes.Equal",
	Suppression: "lsm:aliasok",
	Run:         runIKeyCmp,
}

func runIKeyCmp(pass *Pass) {
	if pkgPathTail(pass.Pkg.Path(), "ikey") {
		return
	}
	info := pass.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			isCmp := isPkgFunc(info, call, "bytes", "Compare")
			isEq := isPkgFunc(info, call, "bytes", "Equal")
			if !isCmp && !isEq {
				return true
			}
			for _, arg := range call.Args {
				if !isInternalKeyExpr(pass, arg) {
					continue
				}
				if pass.SuppressedAt(call.Pos(), "lsm:aliasok") {
					continue
				}
				fix := "ikey.Compare"
				if isEq {
					fix = "ikey.Compare(...) == 0"
				}
				pass.Reportf(call.Pos(), "raw byte comparison of internal key %s; use %s (user-key asc, seq desc)", exprText(arg), fix)
				return true
			}
			return true
		})
	}
}

// isInternalKeyExpr reports whether e is recognisably an internal key.
func isInternalKeyExpr(pass *Pass, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		if isPkgFunc(pass.Info, x, "ikey", "Make") ||
			isPkgFunc(pass.Info, x, "ikey", "SeekKey") ||
			isPkgFunc(pass.Info, x, "ikey", "AppendSeek") {
			return true
		}
		return iterMethodCall(pass.Info, x, "Key")
	case *ast.Ident:
		return internalKeyName(x.Name)
	case *ast.SelectorExpr:
		return internalKeyName(x.Sel.Name)
	case *ast.SliceExpr:
		return isInternalKeyExpr(pass, x.X)
	}
	return false
}

// internalKeyName matches the repo's internal-key naming conventions.
func internalKeyName(name string) bool {
	switch name {
	case "ik", "ika", "ikb", "Smallest", "Largest":
		return true
	}
	if strings.HasPrefix(name, "internalKey") || strings.HasPrefix(name, "InternalKey") {
		return true
	}
	// ikFoo, ikPrev — an "ik" prefix followed by an exported-style hump.
	if len(name) > 2 && strings.HasPrefix(name, "ik") && name[2] >= 'A' && name[2] <= 'Z' {
		return true
	}
	return false
}

// exprText renders a short source-ish form of e for diagnostics.
func exprText(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if root := rootIdent(x.X); root != nil {
			return root.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "(...)"
	case *ast.SliceExpr:
		return exprText(x.X) + "[...]"
	}
	return "expression"
}
