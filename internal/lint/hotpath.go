package lint

import (
	"go/ast"
	"go/types"
)

// HotPath audits functions annotated //lsm:hotpath — the per-operation
// read/compare path where the engine promises zero steady-state
// allocation and no syscalls. Inside such a function the analyzer
// forbids:
//
//   - time.Now — wall-clock reads are the sampled tracer's job
//     (Trace.Now is nil-cheap and rate-limited); a raw time.Now costs a
//     vDSO call per key visited
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln — each allocates; hot
//     paths return sentinel errors or write into caller buffers
//   - growing append: append(dst, ...) where dst is neither re-sliced
//     (dst[:n], the reuse idiom) nor rooted in a parameter/receiver
//     (caller-owned scratch) — i.e. an append that can only grow a
//     fresh local allocation per call
//
// Calls inside panic(...) arguments are exempt: corruption panics are
// off the hot path by definition. Individual sites are waived with
// //lsm:allocok.
var HotPath = &Analyzer{
	Name:        "hotpath",
	Doc:         "//lsm:hotpath functions avoid time.Now, fmt.Sprintf and unbounded append",
	Suppression: "lsm:allocok",
	Run:         runHotPath,
}

func runHotPath(pass *Pass) {
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if !funcHasDirective(fd, "lsm:hotpath") {
			return
		}
		checkHotPathFunc(pass, fd)
	})
}

func checkHotPathFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Objects owned by the caller: parameters and receiver. Appending
	// into these reuses caller-provided capacity, the scratch pattern.
	callerOwned := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					callerOwned[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)

	// panicArgs collects call nodes nested inside panic(...) arguments.
	panicArgs := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				ast.Inspect(arg, func(inner ast.Node) bool {
					if c, ok := inner.(*ast.CallExpr); ok {
						panicArgs[c] = true
					}
					return true
				})
			}
		}
		return true
	})

	report := func(n ast.Node, format string, args ...interface{}) {
		if pass.SuppressedAt(n.Pos(), "lsm:allocok") {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || panicArgs[call] {
			return true
		}
		switch {
		case isPkgFunc(info, call, "time", "Now"):
			report(call, "time.Now in //lsm:hotpath %s; route timing through the sampled tracer (Trace.Now)", fd.Name.Name)
		case isPkgFunc(info, call, "fmt", "Sprintf"),
			isPkgFunc(info, call, "fmt", "Sprint"),
			isPkgFunc(info, call, "fmt", "Sprintln"):
			report(call, "fmt string formatting allocates in //lsm:hotpath %s; use sentinel errors or caller buffers", fd.Name.Name)
		case isBuiltinAppend(info, call) && len(call.Args) > 0:
			if hotAppendOK(info, callerOwned, call.Args[0]) {
				return true
			}
			report(call, "growing append in //lsm:hotpath %s; reuse a scratch buffer (dst[:0]) or mark //lsm:allocok", fd.Name.Name)
		}
		return true
	})
}

// hotAppendOK reports whether the append destination reuses existing
// capacity: a slice expression (buf[:0], key[:shared]) or any expression
// rooted in a caller-owned parameter/receiver object.
func hotAppendOK(info *types.Info, callerOwned map[types.Object]bool, dst ast.Expr) bool {
	if _, ok := unparen(dst).(*ast.SliceExpr); ok {
		return true
	}
	if root := rootIdent(dst); root != nil {
		if obj := objOf(info, root); obj != nil && callerOwned[obj] {
			return true
		}
	}
	return false
}
