package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces the `// guarded by <mu>` field annotations. A field
// so annotated may only be read or written by functions that visibly
// acquire the guarding mutex (a <recv>.<mu>.Lock() or .RLock() call in
// the body), follow the repo's *Locked suffix convention (caller holds
// the lock), carry an explicit //lsm:locked directive, or operate on an
// unpublished object just built from a composite literal (constructors).
// The check is flow-insensitive by design: it catches the real failure
// mode — a function that touches guarded state and never mentions the
// mutex at all — without a dataflow engine.
//
// LockGuard also flags code that copies a mutex by value: parameters,
// results and receivers of mutex-containing struct types, and
// dereference copies (x := *p). A copied mutex guards nothing.
var LockGuard = &Analyzer{
	Name:        "lockguard",
	Doc:         "fields annotated `// guarded by mu` are only touched under the lock; mutexes are never copied",
	Suppression: "lsm:locked",
	Run:         runLockGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// collectGuards maps each annotated field object to the bare name of its
// guarding mutex ("db.mu" → "mu": the lock is matched by final name,
// whatever path the accessor reaches it through).
func collectGuards(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	note := func(field *ast.Field, text string) {
		m := guardedByRE.FindStringSubmatch(text)
		if m == nil {
			return
		}
		guard := m[1]
		if i := strings.LastIndex(guard, "."); i >= 0 {
			guard = guard[i+1:]
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				guards[obj] = guard
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Doc != nil {
					note(field, field.Doc.Text())
				}
				if field.Comment != nil {
					note(field, field.Comment.Text())
				}
			}
			return true
		})
	}
	return guards
}

func runLockGuard(pass *Pass) {
	guards := collectGuards(pass)
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		checkMutexCopies(pass, fd)
		if len(guards) == 0 {
			return
		}
		checkGuardedAccess(pass, fd, guards)
	})
}

func checkGuardedAccess(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]string) {
	name := fd.Name.Name
	if strings.HasSuffix(name, "Locked") || strings.HasSuffix(name, "locked") {
		return
	}
	if funcHasDirective(fd, "lsm:locked") {
		return
	}
	info := pass.Info

	// Mutex names this function visibly locks (flow-insensitively):
	// db.mu.Lock(), s.mu.RLock(), mu.Lock().
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch mu := unparen(sel.X).(type) {
		case *ast.Ident:
			locked[mu.Name] = true
		case *ast.SelectorExpr:
			locked[mu.Sel.Name] = true
		}
		return true
	})

	unpublished := localCompositeInits(info, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := objOf(info, sel.Sel)
		if obj == nil {
			return true
		}
		guard, guarded := guards[obj]
		if !guarded || locked[guard] {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if rObj := objOf(info, root); rObj != nil && unpublished[rObj] {
				return true
			}
		}
		if pass.SuppressedAt(sel.Pos(), "lsm:locked") {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s is guarded by %s but %s does not lock it (take the lock, suffix the name Locked, or annotate //lsm:locked)",
			sel.Sel.Name, guard, name)
		return true
	})
}

// checkMutexCopies flags by-value movement of mutex-containing structs.
func checkMutexCopies(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if _, isPtr := field.Type.(*ast.StarExpr); isPtr {
				continue
			}
			t := info.Types[field.Type].Type
			if t == nil || !containsMutex(t, 0) {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			pass.Reportf(field.Type.Pos(), "%s copies a mutex-containing struct by value (%s); pass a pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	checkFieldList(fd.Recv, "receiver")
	checkFieldList(fd.Type.Params, "parameter")
	checkFieldList(fd.Type.Results, "result")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Rhs {
				star, ok := unparen(st.Rhs[i]).(*ast.StarExpr)
				if !ok {
					continue
				}
				t := info.Types[star].Type
				if t != nil && containsMutex(t, 0) {
					pass.Reportf(st.Rhs[i].Pos(), "dereference copies a mutex-containing struct (%s); keep the pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		case *ast.RangeStmt:
			if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil && containsMutex(obj.Type(), 0) {
					pass.Reportf(id.Pos(), "range copies a mutex-containing struct (%s); range over indices or pointers", types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)))
				}
			}
		}
		return true
	})
}
