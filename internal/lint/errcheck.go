package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrCheck is the repo's errcheck-lite. Two rules:
//
//  1. A call whose only result is an error, used as a bare statement,
//     silently drops the error. Durability code cannot afford that —
//     Close on an *os.File is where write errors surface. Discarding
//     deliberately is spelled `_ = f.Close()`, which keeps the decision
//     visible in the diff.
//  2. fmt.Errorf that formats an error argument without %w flattens the
//     chain and breaks errors.Is/As across package boundaries.
//
// Deferred and go'd calls are exempt from rule 1: `defer f.Close()` on a
// read-only file is idiomatic, and the flagged pattern is the inline
// statement where the error was simply forgotten.
//
// Exception to the exemption (rule 3): flush/sync calls that durability
// depends on. The group-commit pipeline buffers the WAL behind a
// bufio.Writer, so `defer bw.Flush()` or `go w.Sync()` silently drops
// the very error that says "your acked commit is not on disk". Deferred
// (*bufio.Writer).Flush and wal writer Sync/Flush are flagged: call them
// inline and check the error (or wrap them in a closure that stores it).
var ErrCheck = &Analyzer{
	Name:        "errcheck",
	Doc:         "no silently ignored error returns; fmt.Errorf wraps with %w",
	Suppression: "lsm:errok",
	Run:         runErrCheck,
}

var errType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrCheck(pass *Pass) {
	info := pass.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := unparen(st.X).(*ast.CallExpr)
				if !ok || !callReturnsOnlyError(info, call) {
					return true
				}
				if pass.SuppressedAt(call.Pos(), "lsm:errok") {
					return true
				}
				pass.Reportf(call.Pos(), "error returned by %s is silently ignored; handle it or assign to _ explicitly", calleeText(call))
			case *ast.DeferStmt:
				checkDeferredFlush(pass, st.Call, "deferred")
			case *ast.GoStmt:
				checkDeferredFlush(pass, st.Call, "go'd")
			case *ast.CallExpr:
				checkErrorfWrap(pass, st)
			}
			return true
		})
	}
}

// checkDeferredFlush implements rule 3: a deferred or go'd Flush/Sync on
// a durability-bearing writer discards the error that write path exists
// to surface.
func checkDeferredFlush(pass *Pass, call *ast.CallExpr, how string) {
	if !isDurabilityFlush(pass.Info, call) {
		return
	}
	if pass.SuppressedAt(call.Pos(), "lsm:errok") {
		return
	}
	pass.Reportf(call.Pos(),
		"%s %s discards its error, and durability depends on it; call it inline and check the error", how, calleeText(call))
}

// isDurabilityFlush matches (*bufio.Writer).Flush and Sync/Flush methods
// on the wal package's Writer.
func isDurabilityFlush(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := objOf(info, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Writer" {
		return false
	}
	switch {
	case fn.Pkg().Path() == "bufio":
		return fn.Name() == "Flush"
	case pkgPathTail(fn.Pkg().Path(), "wal"):
		return fn.Name() == "Sync" || fn.Name() == "Flush"
	}
	return false
}

// callReturnsOnlyError reports whether call's signature is exactly
// (...) error.
func callReturnsOnlyError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	// Multi-value results come back as a tuple; single results as the
	// bare type.
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// checkErrorfWrap flags fmt.Errorf("...%v...", err) — an error argument
// formatted without %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.Info
	if !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if !types.Implements(tv.Type, errType) {
			continue
		}
		if pass.SuppressedAt(call.Pos(), "lsm:errok") {
			return
		}
		pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; the chain is lost to errors.Is/As")
		return
	}
}

// calleeText renders the called function for the diagnostic.
func calleeText(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if root := rootIdent(fun.X); root != nil {
			return root.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
