package lint

import (
	"bytes"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// TestJSONRoundTrip pins the NDJSON encoder: one object per line, all
// fields preserved, suppression omitted when empty.
func TestJSONRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer:    "lockorder",
			Pos:         token.Position{Filename: "db.go", Line: 42, Column: 7},
			Message:     `acquires lsm.DB.logMu while holding cache.shard.mu`,
			Suppression: "lsm:lockok",
		},
		{
			Analyzer: "niltrace",
			Pos:      token.Position{Filename: "trace.go", Line: 9, Column: 1},
			Message:  "message with \"quotes\" and\nnewline",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(diags), buf.String())
	}
	if strings.Contains(lines[1], "suppression") {
		t.Errorf("empty suppression not omitted: %s", lines[1])
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	// Offset does not travel; compare the wire fields.
	for i := range diags {
		diags[i].Pos.Offset = 0
	}
	if !reflect.DeepEqual(got, diags) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, diags)
	}
}

// TestJSONEmpty: an empty run writes nothing and reads back nothing.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty run wrote %q", buf.String())
	}
	got, err := ReadJSON(&buf)
	if err != nil || got != nil {
		t.Errorf("ReadJSON = %v, %v; want nil, nil", got, err)
	}
}
