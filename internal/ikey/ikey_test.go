package ikey

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	cases := []struct {
		key  []byte
		seq  uint64
		kind Kind
	}{
		{[]byte("tweet-1"), 1, KindSet},
		{[]byte(""), 0, KindDelete},
		{[]byte{0x00, 0xff}, MaxSeq, KindSet},
		{[]byte("x"), 123456789, KindDelete},
	}
	for _, c := range cases {
		ik := Make(c.key, c.seq, c.kind)
		if !bytes.Equal(UserKey(ik), c.key) {
			t.Errorf("UserKey mismatch for %q", c.key)
		}
		if Seq(ik) != c.seq {
			t.Errorf("Seq = %d, want %d", Seq(ik), c.seq)
		}
		if KindOf(ik) != c.kind {
			t.Errorf("Kind = %d, want %d", KindOf(ik), c.kind)
		}
	}
}

func TestCompareUserKeyDominates(t *testing.T) {
	a := Make([]byte("a"), 1, KindSet)
	b := Make([]byte("b"), 100, KindSet)
	if Compare(a, b) >= 0 {
		t.Fatal("a must sort before b regardless of seq")
	}
}

func TestCompareSeqDescending(t *testing.T) {
	old := Make([]byte("k"), 5, KindSet)
	newer := Make([]byte("k"), 10, KindSet)
	if Compare(newer, old) >= 0 {
		t.Fatal("newer sequence must sort first")
	}
	if Compare(old, old) != 0 {
		t.Fatal("equal keys must compare 0")
	}
}

func TestSeekKeySortsFirst(t *testing.T) {
	seek := SeekKey([]byte("k"))
	for _, seq := range []uint64{0, 1, 1000, MaxSeq - 1} {
		for _, kind := range []Kind{KindDelete, KindSet} {
			ik := Make([]byte("k"), seq, kind)
			if Compare(seek, ik) > 0 {
				t.Fatalf("SeekKey must not sort after %s", String(ik))
			}
		}
	}
}

func TestSortOrdering(t *testing.T) {
	keys := [][]byte{
		Make([]byte("a"), 3, KindSet),
		Make([]byte("b"), 1, KindSet),
		Make([]byte("a"), 7, KindDelete),
		Make([]byte("a"), 5, KindSet),
		Make([]byte("b"), 9, KindDelete),
	}
	sort.Slice(keys, func(i, j int) bool { return Compare(keys[i], keys[j]) < 0 })
	want := []string{
		`"a"@7:DEL`, `"a"@5:SET`, `"a"@3:SET`, `"b"@9:DEL`, `"b"@1:SET`,
	}
	for i, k := range keys {
		if String(k) != want[i] {
			t.Fatalf("position %d: got %s want %s", i, String(k), want[i])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(key []byte, seq uint64, del bool) bool {
		seq &= MaxSeq
		kind := KindSet
		if del {
			kind = KindDelete
		}
		ik := Make(key, seq, kind)
		return bytes.Equal(UserKey(ik), key) && Seq(ik) == seq && KindOf(ik) == kind
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareConsistentWithParts(t *testing.T) {
	prop := func(k1, k2 []byte, s1, s2 uint64) bool {
		s1 &= MaxSeq
		s2 &= MaxSeq
		a := Make(k1, s1, KindSet)
		b := Make(k2, s2, KindSet)
		c := Compare(a, b)
		if uc := bytes.Compare(k1, k2); uc != 0 {
			return (c < 0) == (uc < 0)
		}
		switch {
		case s1 > s2:
			return c < 0
		case s1 < s2:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
