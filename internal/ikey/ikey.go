// Package ikey defines the internal key encoding shared by the MemTable,
// SSTables and the LSM engine.
//
// An internal key is the user key followed by an 8-byte trailer packing a
// 56-bit sequence number and an 8-bit record kind, exactly LevelDB's
// scheme. The comparator orders by user key ascending, then by sequence
// number *descending*, so the newest version of a key is encountered first
// when scanning forward. Tombstones (KindDelete) participate in ordering
// like any other record.
package ikey

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind distinguishes live records from deletion tombstones.
type Kind uint8

const (
	// KindDelete marks a tombstone; the value is ignored.
	KindDelete Kind = 0
	// KindSet marks a live key/value record.
	KindSet Kind = 1
)

// MaxSeq is the largest representable sequence number (56 bits).
const MaxSeq = uint64(1)<<56 - 1

const trailerLen = 8

// Make encodes an internal key from its parts.
func Make(userKey []byte, seq uint64, kind Kind) []byte {
	ik := make([]byte, len(userKey)+trailerLen)
	copy(ik, userKey)
	binary.BigEndian.PutUint64(ik[len(userKey):], seq<<8|uint64(kind))
	return ik
}

// SeekKey returns the internal key that sorts before every record of
// userKey, suitable as a lower bound for forward scans.
func SeekKey(userKey []byte) []byte { return Make(userKey, MaxSeq, KindSet) }

// AppendSeek appends SeekKey(userKey) to dst and returns the extended
// slice — the allocation-free variant for hot read paths that reuse a
// scratch buffer.
//
//lsm:hotpath
func AppendSeek(dst, userKey []byte) []byte {
	dst = append(dst, userKey...)
	return binary.BigEndian.AppendUint64(dst, MaxSeq<<8|uint64(KindSet))
}

// Valid reports whether ik is long enough to carry the 8-byte trailer;
// the accessors below panic on anything shorter, so untrusted inputs
// must be checked first.
func Valid(ik []byte) bool { return len(ik) >= trailerLen }

// UserKey extracts the user key portion. It panics on malformed keys.
//
//lsm:hotpath
func UserKey(ik []byte) []byte {
	if len(ik) < trailerLen {
		panic(fmt.Sprintf("ikey: malformed internal key of length %d", len(ik)))
	}
	return ik[:len(ik)-trailerLen]
}

// Seq extracts the sequence number.
//
//lsm:hotpath
func Seq(ik []byte) uint64 {
	return binary.BigEndian.Uint64(ik[len(ik)-trailerLen:]) >> 8
}

// KindOf extracts the record kind.
//
//lsm:hotpath
func KindOf(ik []byte) Kind {
	return Kind(ik[len(ik)-1])
}

// Compare orders internal keys: user key ascending, then sequence number
// descending, then kind descending. It is the comparator for every ordered
// structure in the engine.
//
//lsm:hotpath
func Compare(a, b []byte) int {
	ua, ub := UserKey(a), UserKey(b)
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	ta := binary.BigEndian.Uint64(a[len(a)-trailerLen:])
	tb := binary.BigEndian.Uint64(b[len(b)-trailerLen:])
	switch {
	case ta > tb:
		return -1 // higher seq (or kind) sorts first
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// String renders an internal key for debugging.
func String(ik []byte) string {
	if len(ik) < trailerLen {
		return fmt.Sprintf("corrupt(%x)", ik)
	}
	k := "SET"
	if KindOf(ik) == KindDelete {
		k = "DEL"
	}
	return fmt.Sprintf("%q@%d:%s", UserKey(ik), Seq(ik), k)
}
