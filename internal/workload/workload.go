// Package workload reimplements the paper's Twitter-based workload
// generator (§5.1): a synthetic tweet dataset whose UserID rank-frequency
// distribution follows the seed dataset's Zipf shape (Figure 7) and whose
// CreationTime is time-correlated, plus Static and Mixed operation streams
// with fine-grained control of the primary/secondary query ratio that the
// paper built the generator for.
//
// The original seed — 8M geotagged tweets from the Twitter Streaming API —
// is proprietary; the generator is parameterized by that seed's published
// summary statistics (average 30 tweets/user, average 35 tweets/second,
// average tweet size 550 bytes) as described in DESIGN.md §3.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Attribute names used across experiments (paper §5.1: "we selected
// UserID and CreationTime as two secondary attributes").
const (
	AttrUser = "UserID"
	AttrTime = "CreationTime"
)

// EncodeTime renders a second-counter as a zero-padded, byte-orderable
// string, making CreationTime range predicates work over string zone maps.
func EncodeTime(sec int64) string { return fmt.Sprintf("%010d", sec) }

// Tweet is one synthetic record.
type Tweet struct {
	ID       string // primary key, e.g. "t0000000042"
	UserID   string
	Creation int64 // seconds since stream start (time-correlated)
	Text     string
}

// Doc renders the tweet as the JSON document stored in the primary table.
func (t Tweet) Doc() []byte {
	return []byte(fmt.Sprintf(`{"UserID":%q,"CreationTime":%q,"Text":%q}`,
		t.UserID, EncodeTime(t.Creation), t.Text))
}

// Config parameterizes the dataset generator.
type Config struct {
	// Tweets is the number of tweets to generate.
	Tweets int
	// Users is the user population. The paper's seed averages 30
	// tweets/user; default Tweets/30 (min 1).
	Users int
	// ZipfS is the Zipf exponent of the user rank-frequency distribution
	// (Figure 7 shows a heavy-tailed power law). Default 1.2.
	ZipfS float64
	// MeanTweetsPerSecond drives the time-correlated CreationTime: each
	// simulated second receives Uniform(0, 2·mean) tweets, the paper's
	// stated rule. Default 35 (the seed's average).
	MeanTweetsPerSecond int
	// TextBytes sizes the random body text. The seed's average tweet is
	// 550 bytes including 22 attributes; we default the body to 160.
	TextBytes int
	// Seed seeds the PRNG for reproducible datasets.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = c.Tweets / 30
		if c.Users < 1 {
			c.Users = 1
		}
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.MeanTweetsPerSecond <= 0 {
		c.MeanTweetsPerSecond = 35
	}
	if c.TextBytes <= 0 {
		c.TextBytes = 160
	}
	return c
}

// Generator produces tweets one at a time and records the realized user
// frequency distribution for query generation and Figure 7.
type Generator struct {
	cfg       Config
	rng       *rand.Rand
	zipf      *rand.Zipf
	produced  int
	second    int64
	leftInSec int
	UserFreq  []int // tweets generated per user id
}

// NewGenerator returns a generator for the given config.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:      cfg,
		rng:      rng,
		zipf:     rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-1)),
		UserFreq: make([]int, cfg.Users),
	}
}

// Remaining reports how many tweets are left to generate.
func (g *Generator) Remaining() int { return g.cfg.Tweets - g.produced }

// Next returns the next tweet; ok is false once Config.Tweets have been
// produced.
func (g *Generator) Next() (Tweet, bool) {
	if g.produced >= g.cfg.Tweets {
		return Tweet{}, false
	}
	for g.leftInSec == 0 {
		// "The number of tweets per second is selected based on a uniform
		// distribution with minimum 0 and maximum two times the average."
		g.leftInSec = g.rng.Intn(2*g.cfg.MeanTweetsPerSecond + 1)
		g.second++
	}
	g.leftInSec--

	uid := int(g.zipf.Uint64())
	g.UserFreq[uid]++
	t := Tweet{
		ID:       fmt.Sprintf("t%010d", g.produced),
		UserID:   fmt.Sprintf("u%07d", uid),
		Creation: g.second,
		Text:     randText(g.rng, g.cfg.TextBytes),
	}
	g.produced++
	return t, true
}

// All generates the full dataset eagerly.
func (g *Generator) All() []Tweet {
	out := make([]Tweet, 0, g.Remaining())
	for {
		t, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// MaxSecond returns the last simulated second used so far.
func (g *Generator) MaxSecond() int64 { return g.second }

const textAlphabet = "abcdefghijklmnopqrstuvwxyz      ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789#@"

func randText(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = textAlphabet[rng.Intn(len(textAlphabet))]
	}
	return string(b)
}

// RankFrequency returns the user tweet counts sorted descending — the
// rank-frequency curve of Figure 7.
func RankFrequency(userFreq []int) []int {
	out := make([]int, 0, len(userFreq))
	for _, f := range userFreq {
		if f > 0 {
			out = append(out, f)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
