package workload

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates the operations of Table 1.
type OpKind int

// Operation kinds. Update is a PUT that reuses an existing primary key
// (Table 7b's "Update" column).
const (
	OpPut OpKind = iota
	OpGet
	OpLookup
	OpRangeLookup
	OpUpdate
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpLookup:
		return "LOOKUP"
	case OpRangeLookup:
		return "RANGELOOKUP"
	case OpUpdate:
		return "UPDATE"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operation of a workload stream.
type Op struct {
	Kind  OpKind
	Key   string // PUT/UPDATE/GET primary key
	Value []byte // PUT/UPDATE document
	Attr  string // LOOKUP/RANGELOOKUP attribute
	Lo    string // LOOKUP value, or range lower bound
	Hi    string // range upper bound
	K     int    // top-K limit (0 = no limit)
}

// MixRatios are the operation frequency ratios of a Mixed workload
// (Table 7b). They need not sum to 1; they are normalized. UpdateFrac is
// the fraction of PUTs that reuse an existing key.
type MixRatios struct {
	Put        float64
	Get        float64
	Lookup     float64
	UpdateFrac float64
}

// The paper's three Mixed workloads (Table 7b).
var (
	WriteHeavy  = MixRatios{Put: 0.80, Get: 0.15, Lookup: 0.05, UpdateFrac: 0}
	ReadHeavy   = MixRatios{Put: 0.20, Get: 0.70, Lookup: 0.10, UpdateFrac: 0}
	UpdateHeavy = MixRatios{Put: 0.40, Get: 0.15, Lookup: 0.05, UpdateFrac: 0.40 / 0.80}
)

// Mixed generates a Mixed workload stream: n operations drawn per ratios,
// with continuous data arrivals interleaved with queries. GET keys and
// LOOKUP values follow the distribution of the inserted data (paper §5.1:
// "conditions of the query operations are selected based on the
// distribution of values in the input tweets dataset").
type Mixed struct {
	gen    *Generator
	ratios MixRatios
	rng    *rand.Rand
	n      int
	done   int
	topK   int

	insertedIDs   []string
	insertedUsers []string
}

// NewMixed builds a Mixed stream of n operations over a fresh dataset
// generator. topK bounds LOOKUP queries (0 = no limit).
func NewMixed(cfg Config, ratios MixRatios, n, topK int) *Mixed {
	cfg.Tweets = n // upper bound on puts; generator never exhausts early
	return &Mixed{
		gen:    NewGenerator(cfg),
		ratios: ratios,
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		n:      n,
		topK:   topK,
	}
}

// Next returns the next operation; ok is false after n operations.
func (m *Mixed) Next() (Op, bool) {
	if m.done >= m.n {
		return Op{}, false
	}
	m.done++

	total := m.ratios.Put + m.ratios.Get + m.ratios.Lookup
	r := m.rng.Float64() * total
	switch {
	case r < m.ratios.Put || len(m.insertedIDs) == 0:
		if m.ratios.UpdateFrac > 0 && len(m.insertedIDs) > 0 && m.rng.Float64() < m.ratios.UpdateFrac {
			// Update: a PUT on an existing primary key with fresh content.
			t, ok := m.gen.Next()
			if !ok {
				t = Tweet{UserID: m.pickUser(), Creation: m.gen.MaxSecond(), Text: "updated"}
			}
			t.ID = m.insertedIDs[m.rng.Intn(len(m.insertedIDs))]
			return Op{Kind: OpUpdate, Key: t.ID, Value: t.Doc()}, true
		}
		t, ok := m.gen.Next()
		if !ok {
			return Op{}, false
		}
		m.insertedIDs = append(m.insertedIDs, t.ID)
		m.insertedUsers = append(m.insertedUsers, t.UserID)
		return Op{Kind: OpPut, Key: t.ID, Value: t.Doc()}, true
	case r < m.ratios.Put+m.ratios.Get:
		return Op{Kind: OpGet, Key: m.insertedIDs[m.rng.Intn(len(m.insertedIDs))]}, true
	default:
		u := m.pickUser()
		return Op{Kind: OpLookup, Attr: AttrUser, Lo: u, Hi: u, K: m.topK}, true
	}
}

// pickUser samples a user weighted by tweet count (querying a user id
// drawn from the data distribution).
func (m *Mixed) pickUser() string {
	return m.insertedUsers[m.rng.Intn(len(m.insertedUsers))]
}

// StaticQueries generates the query phase of a Static workload over an
// already-ingested dataset: n operations of one kind whose conditions
// follow the dataset's value distribution.
type StaticQueries struct {
	rng    *rand.Rand
	tweets []Tweet
}

// NewStaticQueries builds a query generator over the ingested tweets.
func NewStaticQueries(tweets []Tweet, seed int64) *StaticQueries {
	return &StaticQueries{rng: rand.New(rand.NewSource(seed)), tweets: tweets}
}

// Get returns a GET on a random existing tweet id.
func (s *StaticQueries) Get() Op {
	return Op{Kind: OpGet, Key: s.tweets[s.rng.Intn(len(s.tweets))].ID}
}

// Lookup returns a LOOKUP on attr with a value drawn from the data
// distribution and the given top-K.
func (s *StaticQueries) Lookup(attr string, k int) Op {
	t := s.tweets[s.rng.Intn(len(s.tweets))]
	v := t.UserID
	if attr == AttrTime {
		v = EncodeTime(t.Creation)
	}
	return Op{Kind: OpLookup, Attr: attr, Lo: v, Hi: v, K: k}
}

// RangeLookupUsers returns a RANGELOOKUP over a span of `width` user ids
// starting at a data-distributed user (paper Table 7a: selectivity in
// number of users).
func (s *StaticQueries) RangeLookupUsers(width, k int) Op {
	t := s.tweets[s.rng.Intn(len(s.tweets))]
	var uid int
	fmt.Sscanf(t.UserID, "u%d", &uid)
	return Op{
		Kind: OpRangeLookup, Attr: AttrUser,
		Lo: fmt.Sprintf("u%07d", uid),
		Hi: fmt.Sprintf("u%07d", uid+width-1),
		K:  k,
	}
}

// RangeLookupTime returns a RANGELOOKUP over a span of `minutes` of
// simulated time anchored at a data-distributed timestamp (Table 7a:
// selectivity in minutes).
func (s *StaticQueries) RangeLookupTime(minutes, k int) Op {
	t := s.tweets[s.rng.Intn(len(s.tweets))]
	lo := t.Creation
	return Op{
		Kind: OpRangeLookup, Attr: AttrTime,
		Lo: EncodeTime(lo),
		Hi: EncodeTime(lo + int64(minutes)*60 - 1),
		K:  k,
	}
}
