package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGeneratorProducesExactCount(t *testing.T) {
	g := NewGenerator(Config{Tweets: 1000, Seed: 1})
	all := g.All()
	if len(all) != 1000 {
		t.Fatalf("generated %d tweets", len(all))
	}
	if _, ok := g.Next(); ok {
		t.Fatal("generator exceeded Tweets")
	}
	// Unique, ordered primary keys.
	for i, tw := range all {
		if tw.ID == "" || (i > 0 && tw.ID <= all[i-1].ID) {
			t.Fatalf("tweet IDs not strictly increasing at %d", i)
		}
	}
}

func TestDocsAreValidJSONWithAttrs(t *testing.T) {
	g := NewGenerator(Config{Tweets: 50, Seed: 2})
	for {
		tw, ok := g.Next()
		if !ok {
			break
		}
		var doc map[string]string
		if err := json.Unmarshal(tw.Doc(), &doc); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, tw.Doc())
		}
		if doc[AttrUser] != tw.UserID {
			t.Fatalf("UserID mismatch: %q vs %q", doc[AttrUser], tw.UserID)
		}
		if doc[AttrTime] != EncodeTime(tw.Creation) {
			t.Fatal("CreationTime mismatch")
		}
		if !strings.HasPrefix(doc[AttrUser], "u") {
			t.Fatal("bad user id format")
		}
	}
}

func TestTimeCorrelation(t *testing.T) {
	g := NewGenerator(Config{Tweets: 5000, Seed: 3})
	prev := int64(-1)
	for {
		tw, ok := g.Next()
		if !ok {
			break
		}
		if tw.Creation < prev {
			t.Fatal("CreationTime must be non-decreasing (time-correlated)")
		}
		prev = tw.Creation
	}
	// ~5000 tweets at ~35/s average should span roughly 140s.
	if g.MaxSecond() < 50 || g.MaxSecond() > 500 {
		t.Fatalf("implausible time span: %d seconds", g.MaxSecond())
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGenerator(Config{Tweets: 30000, Users: 1000, Seed: 4})
	g.All()
	rf := RankFrequency(g.UserFreq)
	if len(rf) < 10 {
		t.Fatalf("too few active users: %d", len(rf))
	}
	// Heavy-tailed: the top user should dwarf the median user.
	median := rf[len(rf)/2]
	if median == 0 {
		median = 1
	}
	if rf[0] < 10*median {
		t.Fatalf("distribution not skewed: top=%d median=%d", rf[0], median)
	}
	// Monotone non-increasing.
	for i := 1; i < len(rf); i++ {
		if rf[i] > rf[i-1] {
			t.Fatal("rank-frequency not sorted")
		}
	}
}

func TestEncodeTimeOrdering(t *testing.T) {
	if EncodeTime(9) >= EncodeTime(10) || EncodeTime(99) >= EncodeTime(100) {
		t.Fatal("EncodeTime breaks byte ordering")
	}
	if len(EncodeTime(0)) != len(EncodeTime(1<<31)) {
		t.Fatal("EncodeTime not fixed width")
	}
}

func TestMixedRatios(t *testing.T) {
	const n = 20000
	m := NewMixed(Config{Seed: 5, Users: 500}, WriteHeavy, n, 10)
	counts := map[OpKind]int{}
	for {
		op, ok := m.Next()
		if !ok {
			break
		}
		counts[op.Kind]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("produced %d ops", total)
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / float64(total) }
	if f := frac(OpPut); f < 0.75 || f > 0.85 {
		t.Fatalf("PUT fraction = %.3f, want ~0.80", f)
	}
	if f := frac(OpGet); f < 0.10 || f > 0.20 {
		t.Fatalf("GET fraction = %.3f, want ~0.15", f)
	}
	if f := frac(OpLookup); f < 0.02 || f > 0.08 {
		t.Fatalf("LOOKUP fraction = %.3f, want ~0.05", f)
	}
	if counts[OpUpdate] != 0 {
		t.Fatal("write-heavy has no updates")
	}
}

func TestMixedUpdateHeavyProducesUpdates(t *testing.T) {
	const n = 10000
	m := NewMixed(Config{Seed: 6, Users: 300}, UpdateHeavy, n, 10)
	counts := map[OpKind]int{}
	keys := map[string]bool{}
	for {
		op, ok := m.Next()
		if !ok {
			break
		}
		counts[op.Kind]++
		if op.Kind == OpPut {
			keys[op.Key] = true
		}
		if op.Kind == OpUpdate && !keys[op.Key] {
			t.Fatal("update on never-inserted key")
		}
	}
	putsAndUpdates := counts[OpPut] + counts[OpUpdate]
	if f := float64(counts[OpUpdate]) / float64(putsAndUpdates); f < 0.35 || f > 0.65 {
		t.Fatalf("update fraction of writes = %.3f, want ~0.5", f)
	}
}

func TestMixedGetsReferenceInsertedKeys(t *testing.T) {
	m := NewMixed(Config{Seed: 7, Users: 100}, ReadHeavy, 5000, 5)
	inserted := map[string]bool{}
	for {
		op, ok := m.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpPut:
			inserted[op.Key] = true
		case OpGet:
			if !inserted[op.Key] {
				t.Fatal("GET on uninserted key")
			}
		case OpLookup:
			if op.Lo == "" || op.Lo != op.Hi {
				t.Fatal("malformed lookup op")
			}
		}
	}
}

func TestStaticQueries(t *testing.T) {
	g := NewGenerator(Config{Tweets: 1000, Seed: 8})
	tweets := g.All()
	q := NewStaticQueries(tweets, 9)

	ids := map[string]bool{}
	for _, tw := range tweets {
		ids[tw.ID] = true
	}
	for i := 0; i < 100; i++ {
		if op := q.Get(); !ids[op.Key] {
			t.Fatal("static GET on unknown key")
		}
		if op := q.Lookup(AttrUser, 10); op.Lo == "" || op.K != 10 {
			t.Fatal("malformed static lookup")
		}
		op := q.RangeLookupUsers(10, 5)
		if op.Lo >= op.Hi {
			t.Fatalf("user range inverted: %q..%q", op.Lo, op.Hi)
		}
		op = q.RangeLookupTime(10, 5)
		if op.Lo > op.Hi || len(op.Lo) != 10 {
			t.Fatalf("time range malformed: %q..%q", op.Lo, op.Hi)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(Config{Tweets: 200, Seed: 42}).All()
	b := NewGenerator(Config{Tweets: 200, Seed: 42}).All()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := NewGenerator(Config{Tweets: 200, Seed: 43}).All()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}
