package workload

import (
	"fmt"
	"math/rand"
)

// YCSB-style workload presets. The paper (§5.1) notes YCSB cannot control
// the primary/secondary query ratio, which motivated its own generator;
// these presets complement the Twitter generator with the six standard
// cloud-serving mixes so the store can also be exercised the way other
// key-value systems are benchmarked. Secondary-attribute queries are
// absent by design — that is YCSB's gap the paper fills.
//
//	A: update heavy (50% read / 50% update)
//	B: read mostly  (95% read / 5% update)
//	C: read only    (100% read)
//	D: read latest  (95% read, skewed to recent inserts / 5% insert)
//	E: short scans  (95% scans of ~50 keys / 5% insert)
//	F: read-modify-write (50% read / 50% RMW)
type YCSBWorkload byte

// The six core YCSB workloads.
const (
	YCSBA YCSBWorkload = 'A'
	YCSBB YCSBWorkload = 'B'
	YCSBC YCSBWorkload = 'C'
	YCSBD YCSBWorkload = 'D'
	YCSBE YCSBWorkload = 'E'
	YCSBF YCSBWorkload = 'F'
)

// YCSBOpKind extends the paper's op set with the scan and
// read-modify-write shapes YCSB needs.
type YCSBOpKind int

// YCSB operation kinds.
const (
	YCSBInsert YCSBOpKind = iota
	YCSBRead
	YCSBUpdate
	YCSBScan
	YCSBReadModifyWrite
)

// YCSBOp is one generated operation.
type YCSBOp struct {
	Kind    YCSBOpKind
	Key     string
	Value   []byte
	ScanLen int // for YCSBScan
}

// YCSBGenerator produces an operation stream for one preset over a
// preloaded key space of Records keys ("user%012d"), using a Zipf request
// distribution as the YCSB defaults do.
type YCSBGenerator struct {
	w        YCSBWorkload
	rng      *rand.Rand
	zipf     *rand.Zipf
	records  int
	inserted int
	n        int
	done     int
	fieldLen int
}

// NewYCSB returns a generator for workload w over `records` preloaded
// keys, producing n operations.
func NewYCSB(w YCSBWorkload, records, n int, seed int64) (*YCSBGenerator, error) {
	switch w {
	case YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF:
	default:
		return nil, fmt.Errorf("workload: unknown YCSB preset %q", string(w))
	}
	if records < 1 {
		records = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &YCSBGenerator{
		w:        w,
		rng:      rng,
		zipf:     rand.NewZipf(rng, 1.2, 4, uint64(records-1)),
		records:  records,
		n:        n,
		fieldLen: 100, // YCSB default: 10 fields × 100B; we store one field
	}, nil
}

// Key renders a YCSB record key.
func YCSBKey(i int) string { return fmt.Sprintf("user%012d", i) }

// LoadValue renders the document inserted during the load phase for key i.
func (g *YCSBGenerator) LoadValue(i int) []byte {
	return []byte(fmt.Sprintf(`{"field0":%q}`, randText(g.rng, g.fieldLen)))
}

// Next returns the next operation; ok is false after n operations.
func (g *YCSBGenerator) Next() (YCSBOp, bool) {
	if g.done >= g.n {
		return YCSBOp{}, false
	}
	g.done++
	r := g.rng.Float64()

	pick := func() string { return YCSBKey(int(g.zipf.Uint64())) }
	pickLatest := func() string {
		// Skew toward the most recently inserted keys.
		lim := g.records + g.inserted
		off := int(g.zipf.Uint64())
		if off >= lim {
			off = lim - 1
		}
		return YCSBKey(lim - 1 - off)
	}
	update := func(kind YCSBOpKind, key string) YCSBOp {
		return YCSBOp{Kind: kind, Key: key,
			Value: []byte(fmt.Sprintf(`{"field0":%q}`, randText(g.rng, g.fieldLen)))}
	}
	insert := func() YCSBOp {
		op := update(YCSBInsert, YCSBKey(g.records+g.inserted))
		g.inserted++
		return op
	}

	switch g.w {
	case YCSBA:
		if r < 0.5 {
			return YCSBOp{Kind: YCSBRead, Key: pick()}, true
		}
		return update(YCSBUpdate, pick()), true
	case YCSBB:
		if r < 0.95 {
			return YCSBOp{Kind: YCSBRead, Key: pick()}, true
		}
		return update(YCSBUpdate, pick()), true
	case YCSBC:
		return YCSBOp{Kind: YCSBRead, Key: pick()}, true
	case YCSBD:
		if r < 0.95 {
			return YCSBOp{Kind: YCSBRead, Key: pickLatest()}, true
		}
		return insert(), true
	case YCSBE:
		if r < 0.95 {
			return YCSBOp{Kind: YCSBScan, Key: pick(), ScanLen: 1 + g.rng.Intn(100)}, true
		}
		return insert(), true
	default: // YCSBF
		if r < 0.5 {
			return YCSBOp{Kind: YCSBRead, Key: pick()}, true
		}
		return update(YCSBReadModifyWrite, pick()), true
	}
}
