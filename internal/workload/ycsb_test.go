package workload

import (
	"strings"
	"testing"
)

func countYCSB(t *testing.T, w YCSBWorkload, n int) map[YCSBOpKind]int {
	t.Helper()
	g, err := NewYCSB(w, 1000, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[YCSBOpKind]int{}
	total := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		total++
		counts[op.Kind]++
		if !strings.HasPrefix(op.Key, "user") {
			t.Fatalf("bad key %q", op.Key)
		}
		switch op.Kind {
		case YCSBInsert, YCSBUpdate, YCSBReadModifyWrite:
			if len(op.Value) == 0 {
				t.Fatal("write op without value")
			}
		case YCSBScan:
			if op.ScanLen < 1 || op.ScanLen > 100 {
				t.Fatalf("scan length %d", op.ScanLen)
			}
		}
	}
	if total != n {
		t.Fatalf("produced %d ops, want %d", total, n)
	}
	return counts
}

func TestYCSBMixes(t *testing.T) {
	const n = 20000
	frac := func(c map[YCSBOpKind]int, k YCSBOpKind) float64 { return float64(c[k]) / n }

	a := countYCSB(t, YCSBA, n)
	if f := frac(a, YCSBRead); f < 0.45 || f > 0.55 {
		t.Errorf("A read fraction %.3f", f)
	}
	if f := frac(a, YCSBUpdate); f < 0.45 || f > 0.55 {
		t.Errorf("A update fraction %.3f", f)
	}

	b := countYCSB(t, YCSBB, n)
	if f := frac(b, YCSBRead); f < 0.93 || f > 0.97 {
		t.Errorf("B read fraction %.3f", f)
	}

	c := countYCSB(t, YCSBC, n)
	if c[YCSBRead] != n {
		t.Errorf("C must be read-only: %v", c)
	}

	d := countYCSB(t, YCSBD, n)
	if d[YCSBInsert] == 0 || frac(d, YCSBRead) < 0.9 {
		t.Errorf("D mix wrong: %v", d)
	}

	e := countYCSB(t, YCSBE, n)
	if f := frac(e, YCSBScan); f < 0.93 || f > 0.97 {
		t.Errorf("E scan fraction %.3f", f)
	}

	f := countYCSB(t, YCSBF, n)
	if f[YCSBReadModifyWrite] == 0 || frac(f, YCSBRead) < 0.45 {
		t.Errorf("F mix wrong: %v", f)
	}

	if _, err := NewYCSB('Z', 10, 10, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestYCSBRequestSkew(t *testing.T) {
	g, _ := NewYCSB(YCSBC, 10000, 30000, 2)
	counts := map[string]int{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		counts[op.Key]++
	}
	// Zipf: the hottest key should be requested far more than the median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 300 { // 1% of requests on one key out of 10k
		t.Fatalf("request distribution not skewed: max=%d over %d keys", max, len(counts))
	}
}

func TestYCSBDReadsRecentKeys(t *testing.T) {
	g, _ := NewYCSB(YCSBD, 1000, 20000, 3)
	recent := 0
	reads := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Kind != YCSBRead {
			continue
		}
		reads++
		if op.Key >= YCSBKey(900) {
			recent++
		}
	}
	if float64(recent)/float64(reads) < 0.5 {
		t.Fatalf("read-latest skew broken: %d/%d recent", recent, reads)
	}
}
