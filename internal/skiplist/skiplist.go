// Package skiplist provides the ordered in-memory structure backing the
// LSM MemTable (paper Appendix A.1, component C0).
//
// The list follows LevelDB's concurrency contract: inserts must be
// serialized externally (the engine holds its writer mutex), while readers
// may traverse concurrently with an in-flight insert without locks, because
// next-pointers are published atomically and nodes are immutable after
// linking.
package skiplist

import (
	"math/rand"
	"sync/atomic"
)

const maxHeight = 12

// Compare is a three-way key comparator: negative if a<b, zero if equal,
// positive if a>b.
type Compare func(a, b []byte) int

type node struct {
	key   []byte
	value []byte
	next  []atomic.Pointer[node]
}

// List is an ordered map from byte-slice keys to byte-slice values.
// Keys must be unique; Insert panics on duplicates (the LSM engine never
// produces duplicate internal keys because each write gets a fresh
// sequence number).
type List struct {
	cmp    Compare
	head   *node
	height atomic.Int32
	rnd    *rand.Rand
	bytes  atomic.Int64
	count  atomic.Int64
}

// New returns an empty list ordered by cmp.
func New(cmp Compare) *List {
	head := &node{next: make([]atomic.Pointer[node], maxHeight)}
	l := &List{cmp: cmp, head: head, rnd: rand.New(rand.NewSource(0xdecafbad))}
	l.height.Store(1)
	return l
}

// ApproximateMemoryUsage returns the total bytes of keys and values stored,
// used by the engine to decide when to flush the MemTable.
func (l *List) ApproximateMemoryUsage() int64 { return l.bytes.Load() }

// Len returns the number of entries.
func (l *List) Len() int { return int(l.count.Load()) }

func (l *List) randomHeight() int {
	// Increase height with probability 1/4 per level, as in LevelDB.
	h := 1
	for h < maxHeight && l.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= target, filling prev with the
// predecessor at every level when prev is non-nil.
//
//lsm:hotpath
func (l *List) findGE(key []byte, prev *[maxHeight]*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, key) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Insert adds a key/value pair. The caller must serialize Insert calls.
func (l *List) Insert(key, value []byte) {
	var prev [maxHeight]*node
	next := l.findGE(key, &prev)
	if next != nil && l.cmp(next.key, key) == 0 {
		panic("skiplist: duplicate key insert")
	}

	h := l.randomHeight()
	if cur := int(l.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = l.head
		}
		// Publishing a larger height before linking is safe: readers that
		// observe the new height see nil pointers from head and drop down.
		l.height.Store(int32(h))
	}

	n := &node{key: key, value: value, next: make([]atomic.Pointer[node], h)}
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n)
	}
	l.bytes.Add(int64(len(key) + len(value)))
	l.count.Add(1)
}

// Get returns the value stored at exactly key.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != nil && l.cmp(n.key, key) == 0 {
		return n.value, true
	}
	return nil, false
}

// Iterator walks the list in key order. It is valid to create iterators
// concurrently with inserts; an iterator observes a consistent prefix of
// the insert history.
type Iterator struct {
	list *List
	node *node
}

// NewIterator returns an unpositioned iterator; call SeekToFirst or SeekGE.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.node != nil }

// Key returns the current key; only valid when Valid().
func (it *Iterator) Key() []byte { return it.node.key }

// Value returns the current value; only valid when Valid().
func (it *Iterator) Value() []byte { return it.node.value }

// Next advances to the following entry.
//
//lsm:hotpath
func (it *Iterator) Next() { it.node = it.node.next[0].Load() }

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() { it.node = it.list.head.next[0].Load() }

// SeekGE positions at the first entry with key >= target.
//
//lsm:hotpath
func (it *Iterator) SeekGE(key []byte) { it.node = it.list.findGE(key, nil) }
