package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func newList() *List { return New(bytes.Compare) }

func TestEmpty(t *testing.T) {
	l := newList()
	if _, ok := l.Get([]byte("x")); ok {
		t.Fatal("empty list returned a value")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator over empty list is valid")
	}
	if l.Len() != 0 || l.ApproximateMemoryUsage() != 0 {
		t.Fatal("empty list has nonzero size")
	}
}

func TestInsertGet(t *testing.T) {
	l := newList()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("k%06d", i))
		l.Insert(k, []byte(fmt.Sprintf("v%d", i)))
	}
	if l.Len() != 1000 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := l.Get([]byte(fmt.Sprintf("k%06d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := l.Get([]byte("missing")); ok {
		t.Fatal("found a missing key")
	}
}

func TestOrderedIteration(t *testing.T) {
	l := newList()
	perm := rand.New(rand.NewSource(7)).Perm(500)
	for _, i := range perm {
		l.Insert([]byte(fmt.Sprintf("k%06d", i)), nil)
	}
	it := l.NewIterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 500 {
		t.Fatalf("iterated %d entries", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("iteration out of order")
	}
}

func TestSeekGE(t *testing.T) {
	l := newList()
	for i := 0; i < 100; i += 2 {
		l.Insert([]byte(fmt.Sprintf("k%02d", i)), nil)
	}
	it := l.NewIterator()

	it.SeekGE([]byte("k10")) // exact
	if !it.Valid() || string(it.Key()) != "k10" {
		t.Fatalf("SeekGE exact: %q", it.Key())
	}
	it.SeekGE([]byte("k11")) // between
	if !it.Valid() || string(it.Key()) != "k12" {
		t.Fatalf("SeekGE between: %q", it.Key())
	}
	it.SeekGE([]byte("k99")) // past end
	if it.Valid() {
		t.Fatal("SeekGE past end should be invalid")
	}
	it.SeekGE([]byte("")) // before start
	if !it.Valid() || string(it.Key()) != "k00" {
		t.Fatalf("SeekGE before start: %q", it.Key())
	}
}

func TestDuplicatePanics(t *testing.T) {
	l := newList()
	l.Insert([]byte("a"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	l.Insert([]byte("a"), nil)
}

func TestMemoryAccounting(t *testing.T) {
	l := newList()
	l.Insert([]byte("abc"), []byte("defgh"))
	if got := l.ApproximateMemoryUsage(); got != 8 {
		t.Fatalf("memory usage = %d, want 8", got)
	}
}

func TestConcurrentReadDuringInsert(t *testing.T) {
	l := newList()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers repeatedly scan and verify ordering while a single writer
	// inserts. Run with -race to validate the publication protocol.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := l.NewIterator()
				prev := []byte(nil)
				for it.SeekToFirst(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						panic("out of order during concurrent read")
					}
					prev = it.Key()
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		l.Insert([]byte(fmt.Sprintf("k%08d", rand.Int63())), nil)
	}
	close(stop)
	wg.Wait()
}

func TestQuickMatchesSortedMap(t *testing.T) {
	prop := func(keys []string) bool {
		l := newList()
		ref := map[string]string{}
		for i, k := range keys {
			if _, dup := ref[k]; dup {
				continue
			}
			v := fmt.Sprintf("v%d", i)
			ref[k] = v
			l.Insert([]byte(k), []byte(v))
		}
		if l.Len() != len(ref) {
			return false
		}
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		it := l.NewIterator()
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= len(want) || string(it.Key()) != want[i] || string(it.Value()) != ref[want[i]] {
				return false
			}
			i++
		}
		return i == len(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newList()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%012d", rand.Int63()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Ignore the vanishingly rare duplicate from random keys.
		func() {
			defer func() { _ = recover() }()
			l.Insert(keys[i], nil)
		}()
	}
}

func BenchmarkGet(b *testing.B) {
	l := newList()
	const n = 100000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%09d", i))
		l.Insert(keys[i], keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(keys[i%n])
	}
}
