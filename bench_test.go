// Benchmarks regenerating the paper's tables and figures, one testing.B
// per experiment. Each benchmark runs the corresponding experiment at a
// bench-friendly scale and reports the headline measurements as custom
// metrics; the full printed tables come from cmd/lsmbench (see
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
package leveldbpp_test

import (
	"io"
	"testing"

	"leveldbpp/internal/core"
	"leveldbpp/internal/experiments"
	"leveldbpp/internal/workload"
)

// benchConfig keeps individual benchmarks in the seconds range while still
// spanning flushes and multi-level compactions.
func benchConfig(b *testing.B) experiments.Config {
	return experiments.Config{Scale: 5000, Dir: b.TempDir(), Out: io.Discard, Seed: 7, Queries: 20}
}

func BenchmarkFig7DatasetZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7DatasetZipf(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Slope, "zipf-slope")
		b.ReportMetric(float64(r.ActiveUsers), "active-users")
	}
}

func BenchmarkFig8aDatabaseSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig8aDatabaseSize(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Kind == core.IndexEmbedded {
				b.ReportMetric(float64(r.PrimaryBytes)/(1<<20), "embedded-primary-MB")
			}
			if r.Kind == core.IndexLazy {
				b.ReportMetric(float64(r.IndexBytes)/(1<<20), "lazy-index-MB")
			}
		}
	}
}

func BenchmarkFig8bPut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig8bPutPerformance(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			switch r.Kind {
			case core.IndexEmbedded:
				b.ReportMetric(r.MeanPutMicros, "embedded-put-us")
			case core.IndexEager:
				b.ReportMetric(r.MeanPutMicros, "eager-put-us")
			}
		}
	}
}

func BenchmarkFig8cGet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig8cGetPerformance(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Kind == core.IndexEmbedded {
				b.ReportMetric(r.GetBlockReads, "blocks-per-get")
			}
		}
	}
}

func BenchmarkFig9PutOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig9PutOverTime(benchConfig(b), 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Kind == core.IndexEager && len(r.Points) > 0 {
				b.ReportMetric(float64(r.Points[len(r.Points)-1].CumIndexCompIO), "eager-comp-io")
			}
		}
	}
}

func BenchmarkFig10UserIDLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig10UserIDQueries(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Kind == core.IndexLazy && r.Op == workload.OpLookup && r.TopK == 10 {
				b.ReportMetric(r.Box.Median, "lazy-top10-median-us")
			}
		}
	}
}

func BenchmarkFig11CreationTimeLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig11CreationTimeQueries(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Kind == core.IndexEmbedded && r.Op == workload.OpRangeLookup && r.TopK == 0 && r.Selectivity == 1 {
				b.ReportMetric(r.IOPerQuery, "embedded-range-io")
			}
		}
	}
}

func BenchmarkFig12MixedWriteHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12WriteHeavy(benchConfig(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14MixedReadHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12ReadHeavy(benchConfig(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15MixedUpdateHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12UpdateHeavy(benchConfig(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Embedded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, measured, err := experiments.Table3Embedded(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(measured, "lookup-block-reads")
	}
}

func BenchmarkTable5StandAlone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, measured, err := experiments.Table5StandAlone(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(measured[core.IndexEager], "eager-io-per-put")
		b.ReportMetric(measured[core.IndexLazy], "lazy-io-per-put")
	}
}

func BenchmarkAppendixC1BloomBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AppendixC1BloomBits(benchConfig(b), []int{5, 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[len(rs)-1].IOPerLookup, "io-at-20bpk")
	}
}

func BenchmarkAppendixC2Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AppendixC2Compression(benchConfig(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.CacheEffects(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[1].HitRate*100, "hit-rate-%")
	}
}

func BenchmarkConcurrentReaders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.ConcurrentReaders(benchConfig(b), []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[len(rs)-1].LookupsPerSec, "lookups-per-sec-4r")
	}
}

func BenchmarkPipelineIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.PipelineIngest(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Kind == core.IndexLazy {
				b.ReportMetric(r.OpsPerSec, r.Mode+"-ops-per-sec")
				b.ReportMetric(r.P99PutUs, r.Mode+"-p99-put-us")
			}
		}
	}
}

func BenchmarkEmbeddedAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.EmbeddedAblations(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Name == "no-getlite" {
				b.ReportMetric(r.IOPerLookup, "no-getlite-io")
			}
		}
	}
}
