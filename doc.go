// Package leveldbpp is a pure-Go reproduction of "A Comparative Study of
// Secondary Indexing Techniques in LSM-based NoSQL Databases" (Qader,
// Cheng, Hristidis — SIGMOD 2018): the LevelDB++ system, its five
// secondary indexing techniques, the Twitter-style workload generator,
// and a benchmark harness regenerating every table and figure of the
// paper's evaluation.
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The library lives under
// internal/core; runnable examples under examples/.
package leveldbpp
